"""Periodic sampling of live simulator state into metrics and traces.

A :class:`SimObserver` is attached to a simulator
(:meth:`repro.microarch.simulator.Simulator.attach_observer`); the core
then calls :meth:`SimObserver.sample` from its existing per-16-cycle
stats window. Detached (the default), the hot loop pays exactly one
attribute load + ``is None`` test per window -- that is the whole
disabled-observability cost, and ``benchmarks/bench_obs_overhead.py``
pins it down.

The observer reads state the pipeline already maintains (occupancy
counts, cache hit/miss counters, PRF allocation masks): sampling adds
no bookkeeping to pipeline stages themselves.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .chrome import ChromeTrace, PID_PIPELINE
from .metrics import MetricsRegistry, NULL_METRICS

if TYPE_CHECKING:  # annotation-only: obs must not import microarch
    from ..microarch.core import OoOCore
    from ..microarch.simulator import Simulator

__all__ = ["DEFAULT_SAMPLE_INTERVAL", "SimObserver"]

#: Matches the core's stats window: samples land every 16th cycle.
DEFAULT_SAMPLE_INTERVAL = 16

#: CoreStats counters copied verbatim into the registry by finish().
_STAT_COUNTERS = (
    "committed", "fetched", "loads", "stores", "branches", "mispredicts",
    "squashed", "syscalls", "prf_reads", "prf_writes", "fetch_stall_cycles",
    "rename_stalls", "commit_stall_cycles",
)


class SimObserver:
    """Samples occupancy/stall/cache metrics from a running simulator.

    ``interval`` is the sampling period in cycles and is rounded up to
    a multiple of the core's 16-cycle stats window. With ``trace``
    given, every sample also appends Chrome counter events (1 simulated
    cycle = 1 µs) so the within-trial pipeline activity can be opened
    in Perfetto.
    """

    def __init__(self, metrics: MetricsRegistry | None = None,
                 trace: ChromeTrace | None = None,
                 interval: int = DEFAULT_SAMPLE_INTERVAL) -> None:
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.trace = trace
        if interval < 1:
            raise ValueError("sample interval must be >= 1")
        self._every = max(1, -(-interval // DEFAULT_SAMPLE_INTERVAL))
        self._tick = 0
        self.samples = 0
        metric = self.metrics
        self._h_rob = metric.histogram("rob.occupancy")
        self._h_iq = metric.histogram("iq.occupancy")
        self._h_lq = metric.histogram("lq.occupancy")
        self._h_sq = metric.histogram("sq.occupancy")
        self._h_prf = metric.histogram("prf.allocated")
        self._last_cache: dict[str, tuple[int, int]] = {}
        if trace is not None:
            trace.process_name(PID_PIPELINE,
                               "pipeline activity (1 cycle = 1 us)")

    # ------------------------------------------------------------- sampling

    def sample(self, core: "OoOCore") -> None:
        """Hot-loop hook: called by the core every 16th cycle."""
        self._tick += 1
        if self._tick < self._every:
            return
        self._tick = 0
        self.samples += 1
        rob = core.rob.occupancy
        iq = core.iq.occupancy
        lq = core.lq.occupancy
        sq = core.sq.occupancy
        prf = core.prf.allocated_count
        self._h_rob.observe(rob)
        self._h_iq.observe(iq)
        self._h_lq.observe(lq)
        self._h_sq.observe(sq)
        self._h_prf.observe(prf)
        trace = self.trace
        if trace is not None:
            ts = float(core.cycle)
            trace.counter("occupancy", ts,
                          {"rob": rob, "iq": iq, "lq": lq, "sq": sq},
                          pid=PID_PIPELINE)
            trace.counter("prf.allocated", ts, {"regs": prf},
                          pid=PID_PIPELINE)
            for cache in (core.hierarchy.l1i, core.hierarchy.l1d,
                          core.hierarchy.l2):
                prev_h, prev_m = self._last_cache.get(cache.name, (0, 0))
                d_hits = cache.hits - prev_h
                d_misses = cache.misses - prev_m
                self._last_cache[cache.name] = (cache.hits, cache.misses)
                window = d_hits + d_misses
                trace.counter(
                    f"{cache.name}.hit_rate", ts,
                    {"rate": d_hits / window if window else 1.0},
                    pid=PID_PIPELINE)

    # ------------------------------------------------------------ totals

    def finish(self, sim: "Simulator") -> None:
        """Fold the run's final counters into the registry."""
        metric = self.metrics
        stats = sim.core.stats
        metric.counter("cycles").inc(stats.cycles)
        for name in _STAT_COUNTERS:
            metric.counter(name).inc(getattr(stats, name))
        if stats.cycles:
            metric.gauge("ipc").set(stats.committed / stats.cycles)
        for cache in (sim.hierarchy.l1i, sim.hierarchy.l1d,
                      sim.hierarchy.l2):
            metric.counter(f"{cache.name}.hits").inc(cache.hits)
            metric.counter(f"{cache.name}.misses").inc(cache.misses)
            metric.gauge(f"{cache.name}.hit_rate").set(cache.hit_rate)
            metric.gauge(f"{cache.name}.resident_lines").set(
                len(cache.lines))
