"""The campaign grid: every (core, benchmark, opt-level, field) cell.

The paper's evaluation is one big grid -- 2 microarchitectures x 8
benchmarks x 4 optimization levels x 15 structure fields, with a fixed
number of injections per cell. :class:`CampaignGrid` materializes that
grid with on-disk JSON caching so the twelve figure benches share one
set of campaigns.

Environment knobs (see DESIGN.md):

* ``REPRO_SCALE``      -- workload input scale (micro/small/large)
* ``REPRO_INJECTIONS`` -- faults per cell
* ``REPRO_SEED``       -- campaign seed
* ``REPRO_MODE``       -- uniform | occupancy sampling
* ``REPRO_CACHE_DIR``  -- cache directory
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from ..gefin import (
    CampaignResult,
    GoldenRun,
    ResultStore,
    result_key,
    run_campaign,
    run_golden,
)
from ..microarch import ALL_FIELDS, CONFIGS, CoreConfig
from ..workloads import BENCHMARKS, build_program

OPT_LEVELS = ("O0", "O1", "O2", "O3")
CORES = ("cortex-a15", "cortex-a72")

_CORE_TO_TARGET = {"cortex-a15": "armlet32", "cortex-a72": "armlet64"}

DEFAULT_CACHE_DIR = Path(
    os.environ.get("REPRO_CACHE_DIR", Path.cwd() / ".repro_cache"))


@dataclass(frozen=True)
class GridSpec:
    """Shape and sampling parameters of one campaign grid."""

    benchmarks: tuple[str, ...] = BENCHMARKS
    levels: tuple[str, ...] = OPT_LEVELS
    cores: tuple[str, ...] = CORES
    fields: tuple[str, ...] = ALL_FIELDS
    scale: str = "micro"
    injections: int = 8
    seed: int = 2021
    mode: str = "occupancy"

    @classmethod
    def from_env(cls) -> "GridSpec":
        return cls(
            scale=os.environ.get("REPRO_SCALE", "micro"),
            injections=int(os.environ.get("REPRO_INJECTIONS", "8")),
            seed=int(os.environ.get("REPRO_SEED", "2021")),
            mode=os.environ.get("REPRO_MODE", "occupancy"),
        )

    @property
    def cells(self) -> int:
        return (len(self.benchmarks) * len(self.levels) * len(self.cores)
                * len(self.fields))


class CampaignGrid:
    """Runs and caches the full campaign grid."""

    def __init__(self, spec: GridSpec | None = None,
                 cache_dir: str | Path | None = None) -> None:
        self.spec = spec or GridSpec.from_env()
        self.store = ResultStore(cache_dir or DEFAULT_CACHE_DIR)
        self._golden: dict[tuple[str, str, str], GoldenRun] = {}

    # ------------------------------------------------------------- building

    def config(self, core: str) -> CoreConfig:
        return CONFIGS[core]

    def program(self, core: str, benchmark: str, level: str):
        return build_program(benchmark, self.spec.scale, level,
                             _CORE_TO_TARGET[core])

    def golden(self, core: str, benchmark: str, level: str,
               snapshots: bool = True) -> GoldenRun:
        """Golden run for one program cell (memoized per process)."""
        key = (core, benchmark, level)
        cached = self._golden.get(key)
        if cached is not None:
            return cached
        program = self.program(core, benchmark, level)
        config = self.config(core)
        golden = run_golden(program, config)
        if snapshots and golden.cycles > 2000:
            golden = run_golden(program, config,
                                snapshot_every=max(1000,
                                                   golden.cycles // 8))
        self._golden[key] = golden
        self._save_golden_stats(core, benchmark, level, golden)
        return golden

    def _golden_key(self, core: str, benchmark: str, level: str) -> str:
        return f"golden__{core}__{benchmark}__{level}__{self.spec.scale}"

    def _save_golden_stats(self, core: str, benchmark: str, level: str,
                           golden: GoldenRun) -> None:
        self.store.save_extra(self._golden_key(core, benchmark, level), {
            "cycles": golden.cycles,
            "stats": golden.stats,
        })

    def golden_cycles(self, core: str, benchmark: str, level: str) -> int:
        """Fault-free cycle count, from cache when available."""
        cached = self.store.load_extra(
            self._golden_key(core, benchmark, level))
        if cached is not None:
            return int(cached["cycles"])
        return self.golden(core, benchmark, level, snapshots=False).cycles

    def golden_stats(self, core: str, benchmark: str,
                     level: str) -> dict[str, float]:
        """Fault-free run statistics (IPC, mix, utilization counters)."""
        cached = self.store.load_extra(
            self._golden_key(core, benchmark, level))
        if cached is not None:
            return dict(cached["stats"])
        return dict(self.golden(core, benchmark, level,
                                snapshots=False).stats)

    # ------------------------------------------------------------ campaigns

    def _cell_key(self, core: str, benchmark: str, level: str,
                  field: str) -> str:
        return result_key(core, benchmark, level, field, self.spec.scale,
                          self.spec.injections, self.spec.seed,
                          self.spec.mode)

    def result(self, core: str, benchmark: str, level: str,
               field: str) -> CampaignResult:
        """Campaign result for one cell, running it if not cached."""
        key = self._cell_key(core, benchmark, level, field)
        cached = self.store.load(key)
        if cached is not None:
            return cached
        golden = self.golden(core, benchmark, level)
        result = run_campaign(
            self.program(core, benchmark, level), self.config(core), field,
            self.spec.injections, seed=self.spec.seed, mode=self.spec.mode,
            golden=golden)
        self.store.save(key, result)
        return result

    def is_cached(self, core: str, benchmark: str, level: str,
                  field: str) -> bool:
        return self._cell_key(core, benchmark, level, field) in self.store

    def ensure_all(self, progress=None, workers: int = 1) -> int:
        """Materialize every cell; returns the number of cells run.

        With ``workers > 1`` the grid is partitioned by program (one
        worker task per (core, benchmark, level), sharing that program's
        golden run across its 15 field campaigns); each worker writes
        its own cache files, so parallelism is safe and resumable.
        """
        if workers > 1:
            return self._ensure_parallel(progress, workers)
        ran = 0
        spec = self.spec
        for core in spec.cores:
            for benchmark in spec.benchmarks:
                for level in spec.levels:
                    for field in spec.fields:
                        if self.is_cached(core, benchmark, level, field):
                            continue
                        self.result(core, benchmark, level, field)
                        ran += 1
                        if progress is not None:
                            progress(core, benchmark, level, field, ran)
                    # free golden snapshots once a program's cells exist
                    self._golden.pop((core, benchmark, level), None)
        return ran

    def _pending_programs(self) -> list[tuple[str, str, str]]:
        spec = self.spec
        return [
            (core, benchmark, level)
            for core in spec.cores
            for benchmark in spec.benchmarks
            for level in spec.levels
            if any(not self.is_cached(core, benchmark, level, field)
                   for field in spec.fields)
        ]

    def _ensure_parallel(self, progress, workers: int) -> int:
        from concurrent.futures import ProcessPoolExecutor, as_completed

        pending = self._pending_programs()
        ran = 0
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(_run_program_cells, self.spec,
                            str(self.store.root), core, benchmark,
                            level): (core, benchmark, level)
                for core, benchmark, level in pending
            }
            for future in as_completed(futures):
                core, benchmark, level = futures[future]
                ran += future.result()
                if progress is not None:
                    progress(core, benchmark, level, "*", ran)
        return ran

    # ------------------------------------------------------------- queries

    def avf(self, core: str, benchmark: str, level: str,
            field: str) -> float:
        return self.result(core, benchmark, level, field).avf

    # ------------------------------------------------------------- misc

    def avf_by_class(self, core: str, benchmark: str, level: str,
                     field: str) -> dict[str, float]:
        return dict(self.result(core, benchmark, level, field).avf_by_class)


def _run_program_cells(spec: GridSpec, store_root: str, core: str,
                       benchmark: str, level: str) -> int:
    """Worker entry point: run all uncached fields of one program."""
    grid = CampaignGrid(spec, store_root)
    ran = 0
    for field in spec.fields:
        if grid.is_cached(core, benchmark, level, field):
            continue
        grid.result(core, benchmark, level, field)
        ran += 1
    return ran
