"""The campaign grid: every (core, benchmark, opt-level, field) cell.

The paper's evaluation is one big grid -- 2 microarchitectures x 8
benchmarks x 4 optimization levels x 15 structure fields, with a fixed
number of injections per cell. :class:`CampaignGrid` materializes that
grid with on-disk JSON caching so the twelve figure benches share one
set of campaigns.

With ``workers > 1``, :meth:`CampaignGrid.ensure_all` schedules at two
levels: every pending cell is split into trial shards (see
:mod:`repro.gefin.parallel`) and the (program x shard) tasks are fanned
out over one supervised process pool (see
:mod:`repro.gefin.resilience`): worker crashes and hangs cost retries,
poison trials are quarantined, and the grid keeps going. Worker
processes cache the golden run of the program they are currently
injecting into, the parent appends finished shards to per-cell
checkpoints, and a killed grid resumes from those checkpoints without
re-running completed work.

Environment knobs (see DESIGN.md):

* ``REPRO_SCALE``      -- workload input scale (micro/small/large)
* ``REPRO_INJECTIONS`` -- faults per cell
* ``REPRO_SEED``       -- campaign seed
* ``REPRO_MODE``       -- uniform | occupancy sampling
* ``REPRO_CACHE_DIR``  -- cache directory
* ``REPRO_WORKERS``    -- default worker-process count
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

from ..gefin import (
    CampaignCheckpoint,
    CampaignResult,
    DEFAULT_MAX_RETRIES,
    Degradation,
    GoldenRun,
    ResultStore,
    RetryPolicy,
    Shard,
    ShardRecord,
    ShardSupervisor,
    aggregate,
    default_shard_timeout,
    plan_shards,
    quarantined_result,
    resolve_workers,
    result_key,
    run_campaign,
    run_golden,
    run_golden_auto,
    run_shard,
)
from ..gefin.injector import InjectionResult
from ..microarch import ALL_FIELDS, CONFIGS, CoreConfig
from ..workloads import BENCHMARKS, build_program

OPT_LEVELS = ("O0", "O1", "O2", "O3")
CORES = ("cortex-a15", "cortex-a72")

_CORE_TO_TARGET = {"cortex-a15": "armlet32", "cortex-a72": "armlet64"}

Cell = tuple[str, str, str, str]


def default_cache_dir() -> Path:
    """Resolve ``REPRO_CACHE_DIR`` at call time, not import time.

    A module-level constant would freeze whatever the env var (and the
    working directory) happened to be when ``repro.experiments`` was
    first imported, silently ignoring later monkeypatching in tests and
    CLI overrides.
    """
    configured = os.environ.get("REPRO_CACHE_DIR", "")
    return Path(configured) if configured else Path.cwd() / ".repro_cache"


@dataclass(frozen=True)
class GridSpec:
    """Shape and sampling parameters of one campaign grid."""

    benchmarks: tuple[str, ...] = BENCHMARKS
    levels: tuple[str, ...] = OPT_LEVELS
    cores: tuple[str, ...] = CORES
    fields: tuple[str, ...] = ALL_FIELDS
    scale: str = "micro"
    injections: int = 8
    seed: int = 2021
    mode: str = "occupancy"

    @classmethod
    def from_env(cls) -> "GridSpec":
        return cls(
            scale=os.environ.get("REPRO_SCALE", "micro"),
            injections=int(os.environ.get("REPRO_INJECTIONS", "8")),
            seed=int(os.environ.get("REPRO_SEED", "2021")),
            mode=os.environ.get("REPRO_MODE", "occupancy"),
        )

    @property
    def cells(self) -> int:
        return (len(self.benchmarks) * len(self.levels) * len(self.cores)
                * len(self.fields))


class CampaignGrid:
    """Runs and caches the full campaign grid."""

    def __init__(self, spec: GridSpec | None = None,
                 cache_dir: str | Path | None = None) -> None:
        self.spec = spec or GridSpec.from_env()
        self.store = ResultStore(cache_dir or default_cache_dir())
        self._golden: dict[tuple[str, str, str], GoldenRun] = {}
        #: Supervisor accounting of the last :meth:`ensure_all` parallel
        #: run (retries, watchdog kills, quarantined trials).
        self.degradation = Degradation()

    # ------------------------------------------------------------- building

    def config(self, core: str) -> CoreConfig:
        return CONFIGS[core]

    def program(self, core: str, benchmark: str, level: str):
        return build_program(benchmark, self.spec.scale, level,
                             _CORE_TO_TARGET[core])

    def golden(self, core: str, benchmark: str, level: str,
               snapshots: bool = True) -> GoldenRun:
        """Golden run for one program cell (memoized per process)."""
        key = (core, benchmark, level)
        cached = self._golden.get(key)
        if cached is not None:
            return cached
        program = self.program(core, benchmark, level)
        config = self.config(core)
        if snapshots:
            # One instrumented simulation with online interval discovery
            # -- short programs (< min_interval cycles) get no snapshots
            # and pay nothing.
            golden = run_golden_auto(program, config, min_interval=1000)
        else:
            golden = run_golden(program, config)
        self._golden[key] = golden
        self._save_golden_stats(core, benchmark, level, golden)
        return golden

    def _golden_key(self, core: str, benchmark: str, level: str) -> str:
        return f"golden__{core}__{benchmark}__{level}__{self.spec.scale}"

    def _save_golden_stats(self, core: str, benchmark: str, level: str,
                           golden: GoldenRun) -> None:
        self.store.save_extra(self._golden_key(core, benchmark, level), {
            "cycles": golden.cycles,
            "stats": golden.stats,
        })

    def golden_cycles(self, core: str, benchmark: str, level: str) -> int:
        """Fault-free cycle count, from cache when available."""
        cached = self.store.load_extra(
            self._golden_key(core, benchmark, level))
        if cached is not None:
            return int(cached["cycles"])
        return self.golden(core, benchmark, level, snapshots=False).cycles

    def golden_stats(self, core: str, benchmark: str,
                     level: str) -> dict[str, float]:
        """Fault-free run statistics (IPC, mix, utilization counters)."""
        cached = self.store.load_extra(
            self._golden_key(core, benchmark, level))
        if cached is not None:
            return dict(cached["stats"])
        return dict(self.golden(core, benchmark, level,
                                snapshots=False).stats)

    # ------------------------------------------------------------ campaigns

    def _cell_key(self, core: str, benchmark: str, level: str,
                  field: str) -> str:
        return result_key(core, benchmark, level, field, self.spec.scale,
                          self.spec.injections, self.spec.seed,
                          self.spec.mode)

    def result(self, core: str, benchmark: str, level: str,
               field: str) -> CampaignResult:
        """Campaign result for one cell, running it if not cached."""
        key = self._cell_key(core, benchmark, level, field)
        cached = self.store.load(key)
        if cached is not None:
            return cached
        golden = self.golden(core, benchmark, level)
        result = run_campaign(
            self.program(core, benchmark, level), self.config(core), field,
            self.spec.injections, seed=self.spec.seed, mode=self.spec.mode,
            golden=golden)
        self.store.save(key, result)
        return result

    def is_cached(self, core: str, benchmark: str, level: str,
                  field: str) -> bool:
        return self._cell_key(core, benchmark, level, field) in self.store

    def _pending_cells(self) -> list[Cell]:
        spec = self.spec
        return [
            (core, benchmark, level, field)
            for core in spec.cores
            for benchmark in spec.benchmarks
            for level in spec.levels
            for field in spec.fields
            if not self.is_cached(core, benchmark, level, field)
        ]

    def ensure_all(self, progress=None, workers: int | None = None,
                   resume: bool = True,
                   max_retries: int = DEFAULT_MAX_RETRIES,
                   shard_timeout: float | None = None,
                   fail_fast: bool = False,
                   metrics=None) -> int:
        """Materialize every cell; returns the number of cells run.

        With ``workers > 1`` every pending cell's trials are sharded and
        the (program x shard) tasks run on one shared process pool --
        two-level scheduling, so even a grid of few programs with many
        injections keeps every worker busy. Finished shards are
        checkpointed per cell; with ``resume`` (the default) a re-run
        picks up exactly where an interrupted one stopped.

        The pool runs under a :class:`~repro.gefin.resilience.
        ShardSupervisor`: crashed or hung workers cost a retry (up to
        ``max_retries``, deterministic backoff), poison trials are
        bisected out and quarantined as ``infrastructure`` outcomes,
        and the accounting lands in :attr:`degradation`. With
        ``shard_timeout=None`` watchdog deadlines are derived from each
        cell's golden cycle count as soon as one is observed; ``<= 0``
        disables the watchdog; ``fail_fast`` restores the old
        crash-the-grid behavior.
        """
        workers = resolve_workers(workers)
        if workers > 1:
            return self._ensure_parallel(
                progress, workers, resume=resume, max_retries=max_retries,
                shard_timeout=shard_timeout, fail_fast=fail_fast,
                metrics=metrics)
        ran = 0
        spec = self.spec
        for core in spec.cores:
            for benchmark in spec.benchmarks:
                for level in spec.levels:
                    for field in spec.fields:
                        if self.is_cached(core, benchmark, level, field):
                            continue
                        self.result(core, benchmark, level, field)
                        ran += 1
                        if progress is not None:
                            progress(core, benchmark, level, field, ran)
                    # free golden snapshots once a program's cells exist
                    self._golden.pop((core, benchmark, level), None)
        return ran

    # ------------------------------------------------- two-level scheduling

    def _cell_meta(self, cell: Cell, shards: list[Shard]) -> dict:
        """Checkpoint header for one grid cell's shard set."""
        core, benchmark, level, field = cell
        spec = self.spec
        return {
            "config": core,
            "benchmark": benchmark,
            "level": level,
            "field": field,
            "scale": spec.scale,
            "n": spec.injections,
            "seed": spec.seed,
            "mode": spec.mode,
            "burst": 1,
            "shards": [[shard.start, shard.stop] for shard in shards],
        }

    def _cell_checkpoint(self, cell: Cell) -> CampaignCheckpoint:
        return CampaignCheckpoint.for_key(self.store.root,
                                          self._cell_key(*cell))

    def _finalize_cell(self, cell: Cell, shards: list[Shard],
                       records: dict[int, ShardRecord]) -> CampaignResult:
        """Aggregate a cell's completed shards and publish the result."""
        core, _benchmark, _level, field = cell
        ordered = [result for shard in shards
                   for result in records[shard.index].results]
        sample = records[shards[0].index] if shards else None
        result = aggregate(
            field,
            sample.program_name if sample else "",
            self.config(core).name,
            self.spec.mode,
            self.spec.seed,
            sample.golden_cycles if sample else 0,
            sample.bit_count if sample else 0,
            ordered,
        )
        self.store.save(self._cell_key(*cell), result)
        self._cell_checkpoint(cell).clear()
        return result

    def _ensure_parallel(self, progress, workers: int,
                         resume: bool = True,
                         max_retries: int = DEFAULT_MAX_RETRIES,
                         shard_timeout: float | None = None,
                         fail_fast: bool = False,
                         metrics=None) -> int:
        spec = self.spec
        shards = plan_shards(spec.injections)
        ran = 0
        state: dict[Cell, dict[int, ShardRecord]] = {}
        pending: list[tuple[Cell, Shard]] = []
        for cell in self._pending_cells():
            if not shards:  # degenerate n=0 grid: fall back to serial
                self.result(*cell)
                ran += 1
                continue
            checkpoint = self._cell_checkpoint(cell)
            meta = self._cell_meta(cell, shards)
            completed = checkpoint.load(meta, shards) if resume else {}
            checkpoint.begin(meta)
            state[cell] = completed
            if len(completed) == len(shards):
                # The previous run died between the last shard and the
                # final store.save; nothing left to simulate.
                self._finalize_cell(cell, shards, completed)
                ran += 1
                if progress is not None:
                    progress(*cell, ran)
                continue
            pending.extend((cell, shard) for shard in shards
                           if shard.index not in completed)
        if not pending:
            return ran

        # Watchdog deadlines: with shard_timeout=None, deadlines are
        # derived per default_shard_timeout from the largest golden
        # cycle count observed so far (cells report theirs with every
        # finished shard). Shards submitted before any golden run has
        # been seen carry no deadline.
        auto_deadline = shard_timeout is None
        if shard_timeout is not None and shard_timeout <= 0:
            shard_timeout = None
        shard_size = max(shard.size for shard in shards)

        # Quarantining a trial needs the cell's golden cycle count and
        # bit count even when no worker ever returned one (the fault
        # spec is re-derived from them). The probe falls back to a
        # parent-side golden run + bit-count query; memoized, and only
        # paid on the quarantine path.
        probes: dict[Cell, tuple[int, int]] = {}

        def probe(cell: Cell) -> tuple[int, int]:
            entry = probes.get(cell)
            if entry is None:
                core, benchmark, level, field = cell
                from ..microarch import Simulator

                cycles = self.golden_cycles(core, benchmark, level)
                bit_count = Simulator(
                    self.program(core, benchmark, level),
                    self.config(core)).bit_count(field)
                entry = (cycles, bit_count)
                probes[cell] = entry
            return entry

        def submit(pool, cell: Cell, shard: Shard):
            return pool.submit(_cell_shard_task, spec, *cell, shard)

        def quarantine(cell: Cell, trial: int, reason: str) -> dict:
            golden_cycles, bit_count = probe(cell)
            return quarantined_result(
                cell[3], trial, spec.seed, golden_cycles, spec.mode, 1,
                bit_count, reason).to_dict()

        def on_shard(cell: Cell, shard: Shard, value,
                     records: list[dict]) -> None:
            nonlocal ran
            if value is not None:
                program_name, golden_cycles, bit_count, _raw = value
                probes.setdefault(cell, (golden_cycles, bit_count))
            else:  # every trial of this shard was quarantined
                golden_cycles, bit_count = probe(cell)
                program_name = self.program(*cell[:3]).name
            record = ShardRecord(
                shard,
                [InjectionResult.from_dict(entry) for entry in records],
                golden_cycles, bit_count, program_name)
            self._cell_checkpoint(cell).record(
                shard, golden_cycles, bit_count, record.results,
                program_name=program_name)
            if auto_deadline and golden_cycles:
                derived = default_shard_timeout(golden_cycles, shard_size)
                supervisor.shard_timeout = max(
                    supervisor.shard_timeout or 0.0, derived)
            cell_records = state[cell]
            cell_records[shard.index] = record
            if len(cell_records) == len(shards):
                self._finalize_cell(cell, shards, cell_records)
                ran += 1
                if progress is not None:
                    progress(*cell, ran)

        # Tasks are submitted grouped by (core, benchmark, level), so a
        # worker's per-process golden cache (see _cell_shard_task) hits
        # for runs of consecutive shards of the same program.
        supervisor = ShardSupervisor(
            min(workers, len(pending)), submit=submit,
            records_of=lambda _cell, _shard, value: value[3],
            quarantine=quarantine, on_shard=on_shard, seed=spec.seed,
            policy=RetryPolicy(max_retries=max_retries),
            shard_timeout=shard_timeout, fail_fast=fail_fast,
            metrics=metrics)
        self.degradation = supervisor.run(pending)
        return ran

    # ------------------------------------------------------------- queries

    def avf(self, core: str, benchmark: str, level: str,
            field: str) -> float:
        return self.result(core, benchmark, level, field).avf

    # ------------------------------------------------------------- misc

    def avf_by_class(self, core: str, benchmark: str, level: str,
                     field: str) -> dict[str, float]:
        return dict(self.result(core, benchmark, level, field).avf_by_class)


# ------------------------------------------------------- worker-side state

# Per worker process: the golden runs (plus per-field bit counts) of the
# programs this worker has recently injected into. Bounded so that a
# grid walking many programs does not pin every snapshot set in memory.
_WORKER_GOLDENS: dict[tuple[str, str, str, str], tuple] = {}
_WORKER_GOLDEN_LIMIT = 2


def _worker_program(spec: GridSpec, core: str, benchmark: str, level: str):
    key = (core, benchmark, level, spec.scale)
    entry = _WORKER_GOLDENS.get(key)
    if entry is None:
        if len(_WORKER_GOLDENS) >= _WORKER_GOLDEN_LIMIT:
            _WORKER_GOLDENS.pop(next(iter(_WORKER_GOLDENS)))
        program = build_program(benchmark, spec.scale, level,
                                _CORE_TO_TARGET[core])
        config = CONFIGS[core]
        golden = run_golden_auto(program, config, min_interval=1000)
        entry = (program, config, golden, {})
        _WORKER_GOLDENS[key] = entry
    return entry


def _cell_shard_task(spec: GridSpec, core: str, benchmark: str, level: str,
                     field: str, shard: Shard,
                     ) -> tuple[str, int, int, list[dict]]:
    """Pool entry point: run one shard of one grid cell."""
    program, config, golden, bit_counts = _worker_program(
        spec, core, benchmark, level)
    bit_count = bit_counts.get(field)
    if bit_count is None:
        from ..microarch import Simulator

        bit_count = Simulator(program, config).bit_count(field)
        bit_counts[field] = bit_count
    results = run_shard(program, config, golden, field, shard, spec.seed,
                        mode=spec.mode, bit_count=bit_count)
    return (program.name, golden.cycles, bit_count,
            [result.to_dict() for result in results])
