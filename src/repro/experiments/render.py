"""ASCII rendering of figure data: every bench prints the same rows or
series the corresponding paper figure plots."""

from __future__ import annotations

from .figures import FAULT_CLASSES


def format_table(title: str, headers: list[str],
                 rows: list[list[str]]) -> str:
    """Render a fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join("-" * w for w in widths)
    out = [title, line,
           "  ".join(h.ljust(w) for h, w in zip(headers, widths)), line]
    for row in rows:
        out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    out.append(line)
    return "\n".join(out)


def render_table1(data: dict[str, dict[str, str]]) -> str:
    cores = list(data)
    parameters = list(next(iter(data.values())))
    rows = [[param] + [data[core][param] for core in cores]
            for param in parameters]
    return format_table("Table I: microprocessor configurations",
                        ["Parameter"] + cores, rows)


def render_fig1(data: dict) -> str:
    parts = []
    for core, benches in data.items():
        levels = list(next(iter(benches.values())))
        rows = [[bench] + [f"{benches[bench][lvl]:.2f}x" for lvl in levels]
                for bench in benches]
        parts.append(format_table(
            f"Fig. 1: relative performance vs O0 ({core})",
            ["benchmark"] + levels, rows))
    return "\n\n".join(parts)


def render_avf_figure(data: dict, figure_no: int, component: str) -> str:
    """Figs. 2-8: one table per (core, field), rows = benchmark x level,
    columns = fault classes + total AVF."""
    parts = []
    for core, fields in data.items():
        for field, panel in fields.items():
            rows = []
            for bench, levels in panel.items():
                for level, classes in levels.items():
                    total = sum(classes.values())
                    rows.append(
                        [bench, level]
                        + [f"{classes.get(c, 0.0):.4f}"
                           for c in FAULT_CLASSES]
                        + [f"{total:.4f}"])
            parts.append(format_table(
                f"Fig. {figure_no}: {component} AVF -- field {field} "
                f"({core})",
                ["benchmark", "level", *FAULT_CLASSES, "AVF"], rows))
    return "\n\n".join(parts)


def render_fig9(data: dict) -> str:
    parts = []
    for core, fields in data.items():
        levels = list(next(iter(fields.values())))
        rows = [[field] + [f"{fields[field][lvl]:+.4f}" for lvl in levels]
                for field in fields]
        parts.append(format_table(
            f"Fig. 9: wAVF difference vs O0 ({core})",
            ["field"] + levels, rows))
    return "\n\n".join(parts)


def render_fig10(data: dict) -> str:
    parts = []
    for core, benches in data.items():
        rows = []
        for bench, levels in benches.items():
            for level, classes in levels.items():
                total = sum(classes.values())
                rows.append(
                    [bench, level]
                    + [f"{classes.get(c, 0.0):.2f}" for c in FAULT_CLASSES]
                    + [f"{total:.2f}"])
        parts.append(format_table(
            f"Fig. 10: CPU FIT rates by fault class ({core})",
            ["benchmark", "level", *FAULT_CLASSES, "total"], rows))
    return "\n\n".join(parts)


def render_fig11(data: dict) -> str:
    parts = []
    for core, benches in data.items():
        levels = list(next(iter(benches.values())))
        rows = [[bench] + [f"{benches[bench][lvl]:.3f}" for lvl in levels]
                for bench in benches]
        parts.append(format_table(
            f"Fig. 11: failures per execution, normalized to O0 ({core})",
            ["benchmark"] + levels, rows))
    return "\n\n".join(parts)


def render_fig12(data: dict) -> str:
    parts = []
    for core, schemes in data.items():
        levels = list(next(iter(schemes.values())))
        rows = [[scheme] + [f"{schemes[scheme][lvl]:.2f}"
                            for lvl in levels]
                for scheme in schemes]
        parts.append(format_table(
            f"Fig. 12: CPU FIT per ECC scheme ({core})",
            ["scheme"] + levels, rows))
    return "\n\n".join(parts)


def render_calibration(data: dict) -> str:
    """Render :func:`~repro.experiments.figures.fig_static_calibration`."""
    headers = ["bench", "level", "n", "acc",
               "P(mask)", "R(mask)", "P(sdc)", "R(sdc)",
               "P(due)", "R(due)"]
    parts = []
    for core, report in data.items():
        rows = []

        def row(label: str, level: str, cell: dict) -> list[str]:
            return [label, level, str(cell["n"]), f"{cell['accuracy']:.2f}",
                    *(f"{cell[metric][name]:.2f}"
                      for name in ("masked", "sdc", "due")
                      for metric in ("precision", "recall"))]

        for bench, levels in report["cells"].items():
            rows.extend(row(bench, level, cell)
                        for level, cell in levels.items())
        rows.append(row("(all)", "-", report["overall"]))
        parts.append(format_table(
            f"Static SDC/DUE prediction vs dynamic ground truth ({core})",
            headers, rows))
    return "\n\n".join(parts)
