"""EXPERIMENTS.md generator: renders every figure from the cached grid
and annotates each with the paper's expected shape.

    python -m repro.experiments.report [output-path]
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

from .figures import (
    FIGURE_FIELDS,
    avf_figure,
    fig1_performance,
    fig9_wavf_difference,
    fig10_fit_rates,
    fig11_fpe,
    fig12_ecc_fit,
    table1_configurations,
    weighted_field_avf,
)
from .grid import CampaignGrid, GridSpec
from .render import (
    render_avf_figure,
    render_fig1,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_table1,
)

_COMPONENT_TITLES = {
    2: "L1 Instruction Cache",
    3: "L1 Data Cache",
    4: "L2 Cache",
    5: "Physical Register File",
    6: "Load and Store Queues",
    7: "Issue Queue",
    8: "Reorder Buffer",
}

_PAPER_SHAPES = {
    1: "O1 captures most of the speedup; O3 marginally worse than O1/O2 "
       "for most benchmarks; same relative ordering on both cores.",
    2: "Crash is the dominant failure class at every level (faults hit "
       "instruction bits and immediates); on the A72, optimized code is "
       "less vulnerable than O0.",
    3: "SDC dominates (faults corrupt application data words); level-to-"
       "level differences are small for the Data field.",
    4: "SDC-dominated like the L1D; the huge array is sparsely utilized "
       "so absolute AVFs are small.",
    5: "Optimized code is MORE vulnerable than O0 (compilers maximize "
       "register utilization); SDC and Crash are balanced.",
    6: "Assert is the leading failure class (corrupted register operands "
       "and addresses produce unhandled microarchitectural operations).",
    7: "The one structure with substantial Timeout rates (lost wake-ups),"
       " roughly balanced with Assert.",
    8: "Assert-only failure profile; the ROB is among the most vulnerable"
       " structures and O0 is its most vulnerable level.",
    9: "RF (and LQ) trend positive (more vulnerable when optimized); the "
       "ROB trends negative on all fields; on the newer core the big "
       "cache arrays trend negative too.",
    10: "The A72's lower raw FIT/bit gives lower absolute FIT for most "
        "benchmarks; its failure mix shifts toward SDC vs the A15's "
        "AppCrash.",
    11: "Most benchmark/level combinations land below 1.0: the speedup "
        "pays back the vulnerability; O3 shows the worst trade-off.",
    12: "Without ECC the higher levels can be worse (A15); with ECC on "
        "L1D+L2 or L2 only, O2 is consistently the most robust level.",
}


def _utilization_table(grid: CampaignGrid) -> str:
    """Register-file write traffic per cycle, per level -- the mechanism
    the paper names for the RF's rising AVF (Section IV-E quotes a 4x
    utilization increase for dijkstra at O1)."""
    from .render import format_table

    parts = []
    for core in grid.spec.cores:
        rows = []
        for bench in grid.spec.benchmarks:
            cells = [bench]
            base = None
            for level in grid.spec.levels:
                stats = grid.golden_stats(core, bench, level)
                cycles = grid.golden_cycles(core, bench, level)
                per_cycle = stats.get("prf_writes", 0.0) / max(1, cycles)
                if base is None:
                    base = per_cycle or 1.0
                cells.append(f"{per_cycle:.2f} ({per_cycle / base:.1f}x)")
            rows.append(cells)
        parts.append(format_table(
            f"Register-file writes per cycle (x vs O0) -- {core}",
            ["benchmark"] + list(grid.spec.levels), rows))
    return "\n\n".join(parts)


def _summarize_headlines(grid: CampaignGrid) -> list[str]:
    """Key scalar comparisons quoted in the paper's abstract/sections."""
    lines = []
    for core in grid.spec.cores:
        rob = {lvl: weighted_field_avf(grid, core, "rob.flags", lvl)
               for lvl in grid.spec.levels}
        prf = {lvl: weighted_field_avf(grid, core, "prf", lvl)
               for lvl in grid.spec.levels}
        lines.append(
            f"- {core}: ROB(flags) wAVF O0={rob['O0']:.3f} vs "
            f"O3={rob['O3']:.3f} "
            f"({'reduced' if rob['O3'] < rob['O0'] else 'INCREASED'} by "
            f"optimization; paper: reduced); "
            f"RF wAVF O0={prf['O0']:.3f} vs O3={prf['O3']:.3f} "
            f"({'increased' if prf['O3'] > prf['O0'] else 'REDUCED'} by "
            f"optimization; paper: increased).")
    return lines


def generate(grid: CampaignGrid) -> str:
    spec = grid.spec
    parts = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S')} from the cached "
        f"campaign grid: scale={spec.scale}, injections per cell="
        f"{spec.injections}, seed={spec.seed}, sampling={spec.mode}.",
        "",
        "Absolute numbers are not expected to match the paper (its "
        "substrate was gem5 running full MiBench datasets for 72M-1.4B "
        "cycles with 2,000 injections per cell; ours is a from-scratch "
        "Python platform at reduced scale). The *shapes* -- which "
        "structure fails how, which level is more vulnerable where, who "
        "wins after ECC -- are the reproduction target. Each section "
        "quotes the paper's shape, then shows our measured series.",
        "",
        "## Headline observations",
        "",
        *_summarize_headlines(grid),
        "",
        "## Known divergences from the paper",
        "",
        "1. **L2 AVF is ~0 at reduced scale.** The paper's large inputs "
        "populate megabytes of L2; our micro/small footprints leave the "
        "1-2 MB array nearly empty, so the L2 contributes almost nothing "
        "to FIT and the ECC-on-L2-only configuration tracks the "
        "unprotected one. Fig. 4's *class* shape (SDC when it fails) "
        "still holds. Use REPRO_SCALE=large to grow footprints.",
        "2. **LQ trends negative (O0 most vulnerable), the paper trends "
        "positive.** In our model O0's stack-reload loads occupy the LQ "
        "far longer (cache-port contention behind many loads), so O0 "
        "residency dominates; the paper's cores resolve O0's loads "
        "faster relative to the optimized code's denser load traffic.",
        "3. **Per-cell noise.** At the default 8 injections per cell the "
        "99% margin per cell is ~0.45, so individual A72 cells can flip "
        "sign (e.g. ROB wAVF differences); the suite-weighted A15 "
        "trends and all class-mix shapes are stable. Raise "
        "REPRO_INJECTIONS for tighter cells.",
        "4. **Speedup magnitudes.** Our O0 baseline is more naive than "
        "GCC's, so O1/O2 speedups (3.5-8.5x) exceed the paper's; the "
        "orderings (O1 captures most, O2 >= O1, O3 often worse) match.",
        "",
        "## Table I — configurations",
        "",
        "```",
        render_table1(table1_configurations()),
        "```",
        "",
        "## Fig. 1 — relative performance",
        "",
        f"Paper shape: {_PAPER_SHAPES[1]}",
        "",
        "```",
        render_fig1(fig1_performance(grid)),
        "```",
        "",
        "### Supporting observation: register utilization",
        "",
        "The paper attributes the RF's rising vulnerability to higher "
        "register utilization under optimization (Section IV-E). Our "
        "golden-run counters reproduce the shift:",
        "",
        "```",
        _utilization_table(grid),
        "```",
    ]
    for figure_no, fields in FIGURE_FIELDS.items():
        title = _COMPONENT_TITLES[figure_no]
        data = avf_figure(grid, fields)
        parts += [
            "",
            f"## Fig. {figure_no} — {title} AVF",
            "",
            f"Paper shape: {_PAPER_SHAPES[figure_no]}",
            "",
            "```",
            render_avf_figure(data, figure_no, title),
            "```",
        ]
    parts += [
        "",
        "## Fig. 9 — weighted AVF difference vs O0",
        "",
        f"Paper shape: {_PAPER_SHAPES[9]}",
        "",
        "```",
        render_fig9(fig9_wavf_difference(grid)),
        "```",
        "",
        "## Fig. 10 — CPU FIT rates",
        "",
        f"Paper shape: {_PAPER_SHAPES[10]}",
        "",
        "```",
        render_fig10(fig10_fit_rates(grid)),
        "```",
        "",
        "## Fig. 11 — failures per execution (normalized to O0)",
        "",
        f"Paper shape: {_PAPER_SHAPES[11]}",
        "",
        "```",
        render_fig11(fig11_fpe(grid)),
        "```",
        "",
        "## Fig. 12 — FIT under ECC configurations",
        "",
        f"Paper shape: {_PAPER_SHAPES[12]}",
        "",
        "```",
        render_fig12(fig12_ecc_fit(grid)),
        "```",
        "",
    ]
    return "\n".join(parts)


def main() -> int:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else \
        Path("EXPERIMENTS.md")
    grid = CampaignGrid(GridSpec.from_env())
    missing = sum(
        0 if grid.is_cached(c, b, l, f) else 1
        for c in grid.spec.cores for b in grid.spec.benchmarks
        for l in grid.spec.levels for f in grid.spec.fields)
    if missing:
        print(f"warning: {missing} cells not cached; they will be run "
              "inline", flush=True)
    output.write_text(generate(grid))
    print(f"wrote {output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
