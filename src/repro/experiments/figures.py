"""Data generators for every table and figure in the paper's evaluation.

Each ``figN_*`` function consumes a :class:`~repro.experiments.grid.
CampaignGrid` and returns plain nested dicts (JSON-serializable) holding
exactly the series the corresponding paper figure plots. Rendering to
text tables lives in :mod:`repro.experiments.render`.
"""

from __future__ import annotations

from ..avf import (
    ECC_SCHEMES,
    cpu_fit,
    cpu_fit_by_class,
    failures_per_execution,
)
from ..avf.static_sdc import calibration_report
from ..avf.weighted import BenchmarkAVF, weighted_avf, weighted_class_avf
from ..gefin.outcomes import FAILURE_OUTCOMES
from ..microarch import CONFIGS
from .grid import CampaignGrid

FAULT_CLASSES = tuple(o.value for o in FAILURE_OUTCOMES)

# Figure -> structure fields shown in that figure (per-benchmark panels);
# the aggregate analyses always use all fifteen fields.
FIGURE_FIELDS = {
    2: ("l1i.data", "l1i.tag"),
    3: ("l1d.data", "l1d.tag"),
    4: ("l2.data", "l2.tag"),
    5: ("prf",),
    6: ("lq", "sq"),
    7: ("iq.src", "iq.dst"),
    8: ("rob.pc", "rob.dest", "rob.flags", "rob.seq"),
}


def table1_configurations() -> dict[str, dict[str, str]]:
    """Table I: the two core configurations."""
    rows: dict[str, dict[str, str]] = {}
    for name, cfg in CONFIGS.items():
        rows[name] = {
            "ISA": f"armlet-{cfg.xlen} "
                   f"({'Armv7' if cfg.xlen == 32 else 'Armv8'} analogue)",
            "Pipeline": "Out-of-Order",
            "L1 Data Cache": f"{cfg.l1d.size_bytes // 1024} KB "
                             f"({cfg.l1d.ways}-way), PIPT",
            "L1 Instruction Cache": f"{cfg.l1i.size_bytes // 1024} KB "
                                    f"({cfg.l1i.ways}-way), PIPT",
            "L2 Cache": f"{cfg.l2.size_bytes // (1024 * 1024)} MB "
                        f"({cfg.l2.ways}-way), PIPT",
            "Physical Register File": f"{cfg.phys_regs} registers",
            "Issue Queue": f"{cfg.iq_entries} entries x {cfg.xlen} bit",
            "Load / Store Queue": f"{cfg.lq_entries} entries x "
                                  f"{cfg.xlen} bit",
            "Reorder Buffer": f"{cfg.rob_entries} entries",
            "Fetch width": str(cfg.fetch_width),
            "Execute Width": str(cfg.execute_width),
            "Writeback Width": str(cfg.writeback_width),
            "Raw FIT/bit": f"{cfg.raw_fit_per_bit:.2e}",
        }
    return rows


def fig1_performance(grid: CampaignGrid) -> dict:
    """Fig. 1: relative performance (speedup vs O0) per benchmark."""
    out: dict = {}
    for core in grid.spec.cores:
        out[core] = {}
        for bench in grid.spec.benchmarks:
            base = grid.golden_cycles(core, bench, "O0")
            out[core][bench] = {
                level: base / grid.golden_cycles(core, bench, level)
                for level in grid.spec.levels
            }
    return out


def avf_figure(grid: CampaignGrid, fields: tuple[str, ...]) -> dict:
    """Figs. 2-8: per-benchmark AVF stacked by fault class, plus wAVF."""
    out: dict = {}
    for core in grid.spec.cores:
        out[core] = {}
        for field in fields:
            panel: dict = {}
            for bench in grid.spec.benchmarks:
                panel[bench] = {
                    level: grid.avf_by_class(core, bench, level, field)
                    for level in grid.spec.levels
                }
            panel["wAVF"] = {}
            for level in grid.spec.levels:
                samples = {
                    bench: (panel[bench][level],
                            float(grid.golden_cycles(core, bench, level)))
                    for bench in grid.spec.benchmarks
                }
                panel["wAVF"][level] = weighted_class_avf(samples)
            out[core][field] = panel
    return out


def weighted_field_avf(grid: CampaignGrid, core: str, field: str,
                       level: str) -> float:
    """wAVF of one field at one level (equation 1 over the suite)."""
    samples = [
        BenchmarkAVF(bench, grid.avf(core, bench, level, field),
                     float(grid.golden_cycles(core, bench, level)))
        for bench in grid.spec.benchmarks
    ]
    return weighted_avf(samples)


def fig9_wavf_difference(grid: CampaignGrid) -> dict:
    """Fig. 9: wAVF difference of O1/O2/O3 relative to O0, per field."""
    out: dict = {}
    for core in grid.spec.cores:
        out[core] = {}
        for field in grid.spec.fields:
            base = weighted_field_avf(grid, core, field, "O0")
            out[core][field] = {
                level: weighted_field_avf(grid, core, field, level) - base
                for level in grid.spec.levels if level != "O0"
            }
    return out


def _field_class_avfs(grid: CampaignGrid, core: str, bench: str,
                      level: str) -> dict[str, dict[str, float]]:
    return {
        field: grid.avf_by_class(core, bench, level, field)
        for field in grid.spec.fields
    }


def fig10_fit_rates(grid: CampaignGrid) -> dict:
    """Fig. 10: whole-CPU FIT per benchmark/level, stacked by class."""
    out: dict = {}
    for core in grid.spec.cores:
        config = CONFIGS[core]
        out[core] = {}
        for bench in grid.spec.benchmarks:
            out[core][bench] = {
                level: cpu_fit_by_class(
                    config, _field_class_avfs(grid, core, bench, level))
                for level in grid.spec.levels
            }
    return out


def fig11_fpe(grid: CampaignGrid) -> dict:
    """Fig. 11: Failures per Execution normalized to O0."""
    fit = fig10_fit_rates(grid)
    out: dict = {}
    for core in grid.spec.cores:
        out[core] = {}
        for bench in grid.spec.benchmarks:
            fpe = {}
            for level in grid.spec.levels:
                total_fit = sum(fit[core][bench][level].values())
                cycles = grid.golden_cycles(core, bench, level)
                fpe[level] = failures_per_execution(total_fit, cycles)
            base = fpe["O0"]
            out[core][bench] = {
                level: (fpe[level] / base if base > 0 else 0.0)
                for level in grid.spec.levels
            }
    return out


def fig12_ecc_fit(grid: CampaignGrid) -> dict:
    """Fig. 12: whole-CPU FIT per level under the three ECC schemes,
    computed from suite-weighted AVFs."""
    out: dict = {}
    for core in grid.spec.cores:
        config = CONFIGS[core]
        out[core] = {}
        for scheme in ECC_SCHEMES:
            out[core][scheme.name] = {}
            for level in grid.spec.levels:
                field_avfs = {
                    field: weighted_field_avf(grid, core, field, level)
                    for field in grid.spec.fields
                }
                out[core][scheme.name][level] = cpu_fit(config, field_avfs,
                                                        scheme)
    return out


def fig_static_calibration(grid: CampaignGrid) -> dict:
    """Static SDC/DUE predictor calibrated against dynamic campaigns.

    Not a paper figure: this is the repo's static-vs-dynamic analysis.
    For every (core, benchmark, level) cell of the grid spec, run a
    uniform-mode PRF campaign, predict each trial's outcome class from
    the bit-level propagation verdicts alone, and report confusion /
    precision / recall (see :mod:`repro.avf.static_sdc`). Per-trial
    records are not cached by the grid store, so cells are re-simulated
    on every call; size the spec accordingly.
    """
    spec = grid.spec
    return {
        core: calibration_report(
            tuple(spec.benchmarks), core=core,
            opt_levels=tuple(spec.levels), n=spec.injections,
            seed=spec.seed, scale=spec.scale)
        for core in spec.cores
    }
