"""Experiments harness: the campaign grid and one data generator per
paper table/figure."""

from .figures import (
    FIGURE_FIELDS,
    avf_figure,
    fig1_performance,
    fig9_wavf_difference,
    fig10_fit_rates,
    fig11_fpe,
    fig12_ecc_fit,
    fig_static_calibration,
    table1_configurations,
    weighted_field_avf,
)
from .grid import CORES, OPT_LEVELS, CampaignGrid, GridSpec
from .render import (
    format_table,
    render_avf_figure,
    render_calibration,
    render_fig1,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_table1,
)

__all__ = [
    "CORES",
    "CampaignGrid",
    "FIGURE_FIELDS",
    "GridSpec",
    "OPT_LEVELS",
    "avf_figure",
    "fig1_performance",
    "fig9_wavf_difference",
    "fig10_fit_rates",
    "fig11_fpe",
    "fig12_ecc_fit",
    "fig_static_calibration",
    "format_table",
    "render_avf_figure",
    "render_calibration",
    "render_fig1",
    "render_fig9",
    "render_fig10",
    "render_fig11",
    "render_fig12",
    "render_table1",
    "table1_configurations",
    "weighted_field_avf",
]
