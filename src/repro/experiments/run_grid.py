"""Command-line campaign-grid runner.

    python -m repro.experiments.run_grid [--workers K] [--no-resume]

Respects the ``REPRO_*`` environment knobs and caches into
``REPRO_CACHE_DIR``; safe to interrupt and resume (each cell is cached
independently, and with ``--workers`` partially-run cells resume from
their shard checkpoints).
"""

from __future__ import annotations

import argparse
import sys
import time

from ..gefin import resolve_workers
from .grid import CampaignGrid, GridSpec


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: REPRO_WORKERS)")
    parser.add_argument("--no-resume", action="store_true",
                        help="ignore shard checkpoints of interrupted runs")
    args = parser.parse_args(argv)

    spec = GridSpec.from_env()
    grid = CampaignGrid(spec)
    total = spec.cells
    workers = resolve_workers(args.workers)
    start = time.time()

    def progress(core: str, bench: str, level: str, field: str,
                 ran: int) -> None:
        elapsed = time.time() - start
        rate = ran * spec.injections / elapsed if elapsed > 0 else 0.0
        print(f"[{elapsed:7.1f}s] {ran:5d} cells run | "
              f"{rate:7.1f} inj/s | {core} {bench} {level} {field}",
              flush=True)

    print(f"grid: {total} cells, scale={spec.scale} "
          f"n={spec.injections} seed={spec.seed} mode={spec.mode} "
          f"workers={workers}", flush=True)
    ran = grid.ensure_all(progress, workers=workers,
                          resume=not args.no_resume)
    print(f"done: {ran} cells run, {total - ran} cached, "
          f"{time.time() - start:.1f}s", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
