"""Command-line campaign-grid runner.

    python -m repro.experiments.run_grid [--workers K] [--no-resume]
        [--max-retries K] [--shard-timeout S] [--fail-fast]

Respects the ``REPRO_*`` environment knobs and caches into
``REPRO_CACHE_DIR``; safe to interrupt and resume (each cell is cached
independently, and with ``--workers`` partially-run cells resume from
their shard checkpoints). Parallel runs are supervised: worker crashes
and hung shards are retried with deterministic backoff, and poison
trials are bisected out and quarantined instead of sinking the grid.
"""

from __future__ import annotations

import argparse
import sys
import time

from ..gefin import DEFAULT_MAX_RETRIES, resolve_workers
from .grid import CampaignGrid, GridSpec

#: Conventional exit status for death-by-SIGINT (128 + SIGINT).
EXIT_SIGINT = 130


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: REPRO_WORKERS)")
    parser.add_argument("--no-resume", action="store_true",
                        help="ignore shard checkpoints of interrupted runs")
    parser.add_argument("--max-retries", type=int,
                        default=DEFAULT_MAX_RETRIES, metavar="K",
                        help="shard retries before bisection "
                             "(default: %(default)s)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="watchdog deadline per shard; default "
                             "derives one from golden cycle counts, "
                             "0 disables the watchdog")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first worker crash or hung "
                             "shard instead of retrying/quarantining")
    args = parser.parse_args(argv)

    spec = GridSpec.from_env()
    grid = CampaignGrid(spec)
    total = spec.cells
    workers = resolve_workers(args.workers)
    start = time.time()

    def progress(core: str, bench: str, level: str, field: str,
                 ran: int) -> None:
        elapsed = time.time() - start
        rate = ran * spec.injections / elapsed if elapsed > 0 else 0.0
        print(f"[{elapsed:7.1f}s] {ran:5d} cells run | "
              f"{rate:7.1f} inj/s | {core} {bench} {level} {field}",
              flush=True)

    print(f"grid: {total} cells, scale={spec.scale} "
          f"n={spec.injections} seed={spec.seed} mode={spec.mode} "
          f"workers={workers}", flush=True)
    try:
        ran = grid.ensure_all(progress, workers=workers,
                              resume=not args.no_resume,
                              max_retries=args.max_retries,
                              shard_timeout=args.shard_timeout,
                              fail_fast=args.fail_fast)
    except KeyboardInterrupt:
        # Finished cells are cached and finished shards fsync'd in
        # their per-cell checkpoints; a plain re-run resumes there.
        print("interrupted: completed cells and shards are checkpointed;"
              " re-run the same command to resume",
              file=sys.stderr, flush=True)
        return EXIT_SIGINT
    degradation = grid.degradation
    if degradation.dirty:
        print(f"degraded: {len(degradation.quarantined)} trials "
              f"quarantined, {degradation.retries} shard retries, "
              f"{degradation.watchdog_kills} watchdog kills, "
              f"{degradation.pool_restarts} pool restarts",
              file=sys.stderr, flush=True)
    print(f"done: {ran} cells run, {total - ran} cached, "
          f"{time.time() - start:.1f}s", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
