"""Command-line campaign-grid runner.

    python -m repro.experiments.run_grid

Respects the ``REPRO_*`` environment knobs and caches into
``REPRO_CACHE_DIR``; safe to interrupt and resume (each cell is cached
independently).
"""

from __future__ import annotations

import sys
import time

from .grid import CampaignGrid, GridSpec


def main() -> int:
    import os

    spec = GridSpec.from_env()
    grid = CampaignGrid(spec)
    total = spec.cells
    workers = int(os.environ.get("REPRO_WORKERS", "1"))
    start = time.time()

    def progress(core: str, bench: str, level: str, field: str,
                 ran: int) -> None:
        elapsed = time.time() - start
        print(f"[{elapsed:7.1f}s] {ran:5d} cells run | "
              f"{core} {bench} {level} {field}", flush=True)

    print(f"grid: {total} cells, scale={spec.scale} "
          f"n={spec.injections} seed={spec.seed} mode={spec.mode} "
          f"workers={workers}", flush=True)
    ran = grid.ensure_all(progress, workers=workers)
    print(f"done: {ran} cells run, {total - ran} cached, "
          f"{time.time() - start:.1f}s", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
