"""64-bit digests of architectural state for trial early termination.

Two primitives back the divergence-tracking trial engine:

:func:`mix64`
    an avalanche hash of a ``(key, value)`` pair. XOR-ing ``mix64``
    outputs gives an *incremental accumulator* over an unordered set of
    keyed values: mutating one element only needs the old and new pair
    (remove-by-XOR, add-by-XOR), so large stores (RAM pages, cache
    lines, the physical register file) keep an always-current digest at
    O(1) amortized cost per write instead of O(size) per read.

:func:`fold`
    an order-sensitive FNV-1a style fold of an int stream, used to
    combine the accumulators with fresh scans of the small queue
    structures into one :meth:`Simulator.state_digest` value.

Both are deterministic across processes (unlike builtin ``hash``, whose
``PYTHONHASHSEED`` randomization would break golden-trace comparisons in
campaign worker processes) and avoid any serialization machinery in the
per-cycle hot path.

Collision note: digests are compared pairwise between a trial and the
golden run *at the same cycle*, so a false convergence needs a specific
64-bit collision; with multiplication by an odd constant being a
bijection on Z/2^64, two states differing in a single folded value can
never collide, and multi-value collisions are ~2^-64 per comparison.
"""

from __future__ import annotations

from collections.abc import Iterable

M64 = (1 << 64) - 1

_PHI = 0x9E3779B97F4A7C15
_MIX1 = 0xFF51AFD7ED558CCD
_MIX2 = 0xC4CEB9FE1A85EC53
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def mix64(key: int, value: int) -> int:
    """Avalanche a ``(key, value)`` pair into 64 bits (splitmix64-ish)."""
    x = (key * _PHI + value * _MIX2 + 1) & M64
    x ^= x >> 30
    x = (x * _MIX1) & M64
    x ^= x >> 27
    x = (x * _MIX2) & M64
    return x ^ (x >> 31)


def fold(seed: int, values: Iterable[int]) -> int:
    """Order-sensitive fold of an int stream into a 64-bit digest.

    ``values`` may contain arbitrarily large non-negative ints -- wide
    valid/alloc masks routinely exceed one machine word -- and every
    64-bit limb is folded separately, so no high bits are silently
    dropped by the masking multiply. Encode ``None``/negatives before
    folding (:func:`opt_int`).
    """
    h = seed ^ _FNV_OFFSET
    for v in values:
        while v > M64:
            h = ((h ^ (v & M64)) * _FNV_PRIME) & M64
            v >>= 64
        h = ((h ^ v) * _FNV_PRIME) & M64
    return h


def opt_int(value: int | None) -> int:
    """Collision-free encoding of an optional int for :func:`fold`."""
    if value is None:
        return 0
    return value + value + 1
