"""Command-line interface: ``python -m repro <subcommand>``.

========  ==========================================================
command   what it does
========  ==========================================================
compile   compile a benchmark (or a MinC file) and print stats/listing
verify    compile with the IR verifier after every optimization pass
lint      static vulnerability analysis (no simulation)
slice     bit-level fault-propagation verdicts for one program point
run       fault-free simulation with cycle counts and instruction mix
inject    statistical fault-injection campaign against one field
trace     traced campaign -> Chrome trace (open at ui.perfetto.dev)
stats     observed fault-free run -> occupancy/stall/cache metrics
ace       ACE-style analytic AVF estimate for comparison with SFI
fields    list the injectable structure fields and their bit counts
grid      populate the full campaign grid (same as experiments.run_grid)
report    regenerate EXPERIMENTS.md from the cached grid
========  ==========================================================

Machine-readable results go to **stdout** (one JSON document under
``--json``); all diagnostics -- progress, checkpoint notices, file
write notes -- go to **stderr**, so piped output stays clean.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from .avf import ace_estimate, instruction_report, static_ace_estimate
from .compiler import TARGETS, compile_module, compile_source
from .errors import IRVerificationError
from .gefin import (
    DEFAULT_MAX_RETRIES,
    run_campaign,
    run_golden,
    run_golden_auto,
)
from .microarch import CONFIGS, Simulator
from .obs import (
    ChromeTrace,
    JsonlSink,
    MetricsRegistry,
    ProgressRenderer,
    SimObserver,
    campaign_trace,
    get_logger,
)
from .workloads import BENCHMARKS, build_program, get_workload

_LOG = get_logger()

_CORE_TO_TARGET = {"cortex-a15": "armlet32", "cortex-a72": "armlet64"}


def _resolve_opt(args) -> str:
    """Honour the ``-O3``-style shorthand over the ``--opt`` default."""
    short = getattr(args, "opt_short", None)
    if short is not None:
        args.opt = f"O{short}"
    return args.opt


def _load_source(args) -> tuple[str, str]:
    """(MinC source, program name) for a benchmark or a file path."""
    if args.program in BENCHMARKS:
        return get_workload(args.program).source(args.scale), args.program
    path = Path(args.program)
    if not path.exists():
        raise SystemExit(
            f"{args.program!r} is neither a benchmark "
            f"({', '.join(BENCHMARKS)}) nor a MinC file")
    return path.read_text(), path.stem


def _load_program(args):
    _resolve_opt(args)
    core = CONFIGS[args.core]
    if args.program in BENCHMARKS:
        program = build_program(args.program, args.scale, args.opt,
                                _CORE_TO_TARGET[args.core])
    else:
        source, name = _load_source(args)
        program = compile_source(
            source, args.opt, TARGETS[_CORE_TO_TARGET[args.core]],
            name=name)
    return program, core


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("program",
                        help="benchmark name or path to a MinC source file")
    parser.add_argument("--core", default="cortex-a15",
                        choices=sorted(CONFIGS))
    parser.add_argument("--opt", default="O2",
                        choices=["O0", "O1", "O2", "O3"])
    parser.add_argument("-O", dest="opt_short", choices=["0", "1", "2", "3"],
                        help="shorthand for --opt O<n>")
    parser.add_argument("--scale", default="micro",
                        choices=["micro", "small", "large"])


def cmd_compile(args) -> int:
    program, _core = _load_program(args)
    print(f"{program.name}: {len(program.text)} instructions, "
          f"{len(program.data)} data bytes, entry at #{program.entry}")
    if args.listing:
        print(program.listing())
    return 0


def cmd_verify(args) -> int:
    _resolve_opt(args)
    source, name = _load_source(args)
    target = TARGETS[_CORE_TO_TARGET[args.core]]
    try:
        result = compile_module(source, args.opt, target, name=name,
                                verify_ir=True)
    except IRVerificationError as err:
        if args.json:
            json.dump({"ok": False, "program": name, "opt": args.opt,
                       "target": target.name, "error": str(err)},
                      sys.stdout, indent=2, sort_keys=True)
            print()
        else:
            print(f"FAIL {name} at {args.opt}: {err}")
        return 1
    module = result.module
    blocks = sum(len(f.blocks) for f in module.functions.values())
    instrs = sum(len(b.instrs) + 1 for f in module.functions.values()
                 for b in f.blocks)
    if args.json:
        json.dump({"ok": True, "program": name, "opt": args.opt,
                   "target": target.name,
                   "functions": len(module.functions),
                   "blocks": blocks, "ir_instructions": instrs},
                  sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(f"OK {name} at {args.opt} ({target.name}): "
          f"{len(module.functions)} functions, {blocks} blocks, "
          f"{instrs} IR instructions verified after every pass")
    return 0


def _lint_findings(program) -> list[dict]:
    """Lint findings proper: defects the exit status should reflect
    (the vulnerability report itself is informational). Currently one
    class: provably dead frame stores, i.e. instructions the compiler
    should have removed, each an avoidable vulnerability window."""
    from .compiler.propagation import dead_frame_stores

    return [
        {"kind": "dead-store", "slot": slot,
         "text": str(program.text[slot]),
         "detail": "store to a private frame slot that is never "
                   "reloaded; the instruction (and the value's "
                   "vulnerability window) is removable"}
        for slot in sorted(dead_frame_stores(program))
    ]


def cmd_lint(args) -> int:
    program, core = _load_program(args)
    started = time.perf_counter()
    result = static_ace_estimate(program, core)
    elapsed = time.perf_counter() - started
    life = result.lifetimes
    findings = _lint_findings(program)
    rows = sorted(instruction_report(life),
                  key=lambda r: r.live_count, reverse=True)[:args.top]
    if args.json:
        stack = life.stack
        json.dump({
            "program": program.name,
            "core": core.name,
            "instructions": len(program.text),
            "estimates": dict(sorted(result.estimates.items())),
            "derivations": dict(sorted(result.derivations.items())),
            "stack_bound_bytes": stack.bound_bytes,
            "register_pressure": {"mean": life.mean_pressure,
                                  "max": life.max_pressure,
                                  "intervals": len(life.intervals)},
            "top_slots": [{"slot": row.index, "live": row.live_count,
                           "text": row.text, "regs": row.reg_names()}
                          for row in rows],
            "findings": findings,
        }, sys.stdout, indent=2, sort_keys=True)
        print()
        return 1 if findings else 0
    print(f"{program.name} on {core.name}: static analysis of "
          f"{len(program.text)} instructions in {elapsed * 1e3:.1f} ms")
    print("per-structure static AVF upper bounds:")
    for field_name, bound in sorted(result.estimates.items()):
        print(f"  {field_name:10s} <= {bound:.4f}  "
              f"[{result.derivations[field_name]}]")
    stack = life.stack
    if stack.bound_bytes is None:
        print("stack: recursive call graph, depth statically unbounded")
    else:
        print(f"stack: worst-case depth {stack.bound_bytes} bytes over "
              f"{len(stack.frame_bytes)} functions")
    print(f"register pressure: mean {life.mean_pressure:.2f}, "
          f"max {life.max_pressure} of {32} live; "
          f"{len(life.intervals)} live intervals")
    print(f"top {len(rows)} most vulnerable instruction slots:")
    for row in rows:
        names = ",".join(row.reg_names())
        print(f"  #{row.index:5d} live={row.live_count:2d} "
              f"{row.text:32s} [{names}]")
    if findings:
        print(f"{len(findings)} finding(s):")
        for finding in findings:
            where = (f" #{finding['slot']} {finding['text']}"
                     if finding["slot"] is not None else "")
            print(f"  {finding['kind']}{where}: {finding['detail']}")
    return 1 if findings else 0


def cmd_slice(args) -> int:
    """Bit-level propagation census, or one (pc, reg) verdict slice."""
    from .api import propagation_report

    program, _core = _load_program(args)
    pc = int(args.pc, 0) if args.pc is not None else None
    try:
        report = propagation_report(program, pc=pc, reg=args.reg)
    except ValueError as err:
        print(err, file=sys.stderr)
        return 1
    if args.json:
        json.dump(report, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    summary = report["summary"]
    print(f"{program.name}: {summary['points']} (slot, reg, bit) points, "
          f"{100 * summary['dead_fraction']:.1f}% provably masked")
    print(f"  live bits: control={summary['control_bits']} "
          f"address={summary['address_bits']} data={summary['data_bits']}")
    print(f"  dead frame stores: {len(report['dead_store_slots'])} slots")
    if pc is None:
        return 0
    print(f"#{report['slot']} @ {report['pc']:#x}: {report['instruction']}")
    print("  per-bit verdicts entering the slot, MSB->LSB "
          "(C control, A address, D data, . dead):")
    xlen = report["xlen"]

    def verdict_row(piece: dict) -> str:
        chars = []
        for bit in reversed(range(xlen)):
            probe = 1 << bit
            if piece["control_mask"] & probe:
                chars.append("C")
            elif piece["address_mask"] & probe:
                chars.append("A")
            elif piece["data_mask"] & probe:
                chars.append("D")
            else:
                chars.append(".")
        return "".join(chars)

    slices = ([report["slice"]] if "slice" in report
              else report["slices"])
    for piece in slices:
        note = (f"  known={piece['known_mask']:#x}"
                if piece["known_mask"] else "")
        print(f"  {piece['reg_name']:>4s} [{verdict_row(piece)}] "
              f"dead={piece['dead_mask']:#x}{note}")
    return 0


def _print_metrics(registry: MetricsRegistry) -> None:
    print("metrics:")
    for name, snap in registry.snapshot().items():
        if snap["type"] in ("histogram", "timer"):
            print(f"  {name}: mean={snap['mean']:.2f} "
                  f"min={snap['min']} max={snap['max']} n={snap['count']}")
        elif isinstance(snap["value"], float):
            print(f"  {name}: {snap['value']:.4f}")
        else:
            print(f"  {name}: {snap['value']}")


def cmd_run(args) -> int:
    program, core = _load_program(args)
    sim = Simulator(program, core)
    registry = MetricsRegistry() if args.metrics else None
    trace = ChromeTrace() if args.trace_out else None
    observer = None
    if registry is not None or trace is not None:
        observer = SimObserver(registry, trace)
        sim.attach_observer(observer)
    result = sim.run(args.max_cycles)
    if observer is not None:
        observer.finish(sim)
    if trace is not None:
        trace.write(args.trace_out)
        _LOG.info("wrote chrome trace", path=args.trace_out,
                  events=len(trace.events))
    if args.json:
        doc = {
            "program": program.name,
            "core": core.name,
            "opt": args.opt,
            "cycles": result.cycles,
            "exit_code": result.exit_code,
            "stats": result.stats,
            "output": result.output.data.decode(errors="replace"),
        }
        if registry is not None:
            doc["metrics"] = registry.snapshot()
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(f"cycles: {result.cycles}")
    for key in ("committed", "ipc", "loads", "stores", "branches",
                "mispredicts", "syscalls"):
        value = result.stats.get(key)
        if value is not None:
            print(f"{key}: {value:.3f}" if isinstance(value, float)
                  else f"{key}: {value}")
    print(f"exit code: {result.exit_code}")
    sys.stdout.write(f"output:\n{result.output.data.decode(errors='replace')}")
    if registry is not None:
        _print_metrics(registry)
    return 0


def _write_campaign_events(path: str, summary, results) -> None:
    """JSONL event stream of one campaign: meta, shard spans, trials."""
    with JsonlSink(path) as sink:
        sink.emit({"kind": "campaign", **summary.to_dict()})
        for span in summary.timeline:
            sink.emit({"kind": "shard-span", **span})
        for trial, result in enumerate(results):
            sink.emit({"kind": "trial", "trial": trial, **result.to_dict()})
    _LOG.info("wrote campaign events", path=path,
              lines=1 + len(summary.timeline) + len(results))


#: Conventional exit status for death-by-SIGINT (128 + SIGINT).
EXIT_SIGINT = 130


def _interrupted(resumable: bool) -> int:
    """Clean ^C epilogue: checkpoint state note + resume hint."""
    if resumable:
        _LOG.warning("interrupted; completed shards are checkpointed",
                     hint="re-run the same command with --resume to "
                          "continue where this campaign stopped")
    else:
        _LOG.warning("interrupted; progress discarded",
                     hint="run with --resume to checkpoint finished "
                          "shards and make campaigns interruptible")
    return EXIT_SIGINT


def cmd_inject(args) -> int:
    program, core = _load_program(args)
    golden = None
    if args.no_snapshots:
        # Explicitly cold: every trial re-simulates from boot. The
        # default (golden=None) auto-snapshots one instrumented golden
        # run so trials warm-start from the nearest checkpoint.
        golden = run_golden(program, core)
        _LOG.info("golden run complete", cycles=golden.cycles,
                  snapshots=0)

    checkpoint = None
    if args.resume:
        from .experiments.grid import default_cache_dir
        from .gefin import CampaignCheckpoint, result_key

        key = result_key(core.name, program.name, args.opt, args.field,
                         args.scale, args.n, args.seed, args.mode)
        checkpoint = CampaignCheckpoint.for_key(
            default_cache_dir(), f"{key}__b{args.burst}")
        _LOG.info("resumable campaign", checkpoint=str(checkpoint.path))

    trace_out = getattr(args, "trace_out", None)
    events_out = getattr(args, "events_out", None)
    tracing = trace_out is not None or events_out is not None

    start = time.perf_counter()
    renderer = ProgressRenderer(args.n)
    try:
        outcome = run_campaign(
            program, core, args.field, args.n,
            seed=args.seed, mode=args.mode, golden=golden,
            burst=args.burst, workers=args.workers,
            checkpoint=checkpoint, progress=lambda done, _n:
            renderer.update(done),
            early_exit=not args.no_early_exit,
            convergence_horizon=args.horizon,
            max_retries=args.max_retries,
            shard_timeout=args.shard_timeout,
            fail_fast=args.fail_fast,
            keep_results=tracing, trace=tracing)
    except KeyboardInterrupt:
        # Completed shards are already fsync'd in the checkpoint (when
        # one exists); just tell the user how to pick the campaign up.
        return _interrupted(checkpoint is not None)
    finally:
        renderer.close()
    if tracing:
        result, results = outcome
    else:
        result, results = outcome, []
    elapsed = time.perf_counter() - start

    if trace_out is not None:
        trace = campaign_trace(result, results)
        trace.write(trace_out)
        _LOG.info("wrote chrome trace", path=trace_out,
                  events=len(trace.events))
    if events_out is not None:
        _write_campaign_events(events_out, result, results)

    if args.json:
        doc = result.to_dict()
        doc["elapsed_seconds"] = elapsed
        json.dump(doc, sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(f"golden: {result.golden_cycles} cycles; campaign: "
          f"{result.n} injections in {elapsed:.1f}s "
          f"({result.n / elapsed:.1f} inj/s)")
    print(f"AVF({args.field}) = {result.avf:.4f} "
          f"(+/- {result.margin():.4f} at 99% confidence, n={result.n})")
    for cls, avf in sorted(result.avf_by_class.items()):
        if avf:
            print(f"  {cls:14s} {avf:.4f}  ({result.counts[cls]} runs)")
    print(f"  masked         {result.counts['masked']} runs")
    pruning = result.pruning
    if pruning:
        print(f"early exit: {pruning.get('static', 0)} statically pruned, "
              f"{pruning.get('static-bit', 0)} bit-level pruned, "
              f"{pruning.get('unchanged', 0)} unchanged, "
              f"{pruning.get('converged', 0)} converged "
              f"(mean window {pruning.get('mean_window', 0.0):.1f} "
              f"cycles), {pruning.get('full', 0)} full runs")
    degradation = result.degradation
    if degradation:
        print(f"degraded: {len(degradation['quarantined'])} trials "
              f"quarantined, {degradation['retries']} shard retries, "
              f"{degradation['watchdog_kills']} watchdog kills, "
              f"{degradation['pool_restarts']} pool restarts")
        print(f"  achieved margin {degradation['achieved_margin99']:.4f} "
              f"over n={degradation['completed_n']} (requested "
              f"{degradation['requested_margin99']:.4f} over "
              f"n={result.n})")
    return 0


def cmd_trace(args) -> int:
    """Traced mini-campaign + observed pipeline run -> one Chrome trace."""
    program, core = _load_program(args)
    trace = ChromeTrace()

    # Track 1: pipeline activity of the fault-free run (cycle time base).
    sim = Simulator(program, core)
    sim.attach_observer(SimObserver(trace=trace, interval=args.interval))
    sim.run(args.max_cycles)
    _LOG.info("observed fault-free run", cycles=sim.cycle)

    # Tracks 2+3: shard/worker timeline and per-trial provenance trails.
    golden = run_golden_auto(program, core)
    summary, results = run_campaign(
        program, core, args.field, args.n, seed=args.seed,
        mode=args.mode, golden=golden, workers=args.workers,
        keep_results=True, trace=True)
    trace.events.extend(campaign_trace(summary, results).events)

    out = args.out or f"{program.name}-{args.field}.trace.json"
    trace.write(out)
    _LOG.info("wrote chrome trace", path=out, events=len(trace.events),
              hint="open at https://ui.perfetto.dev")

    terminal = {}
    for result in results:
        if result.trail:
            kind = result.trail[-1].kind
            terminal[kind] = terminal.get(kind, 0) + 1
    if args.json:
        json.dump({"trace": str(out), "events": len(trace.events),
                   "campaign": summary.to_dict(),
                   "terminal_events": terminal},
                  sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(f"wrote {out} ({len(trace.events)} events)")
    print(f"campaign: {summary.n} traced injections into {args.field}, "
          f"AVF {summary.avf:.4f}")
    for kind, count in sorted(terminal.items()):
        print(f"  {kind:14s} {count} trails")
    return 0


def cmd_stats(args) -> int:
    """Fault-free run with metrics sampling; print the registry."""
    program, core = _load_program(args)
    registry = MetricsRegistry()
    sim = Simulator(program, core)
    observer = SimObserver(registry, interval=args.interval)
    sim.attach_observer(observer)
    result = sim.run(args.max_cycles)
    observer.finish(sim)
    if args.json:
        json.dump({"program": program.name, "core": core.name,
                   "opt": args.opt, "cycles": result.cycles,
                   "samples": observer.samples,
                   "metrics": registry.snapshot()},
                  sys.stdout, indent=2, sort_keys=True)
        print()
        return 0
    print(f"{program.name} on {core.name} at {args.opt}: "
          f"{result.cycles} cycles, {observer.samples} samples")
    _print_metrics(registry)
    return 0


def cmd_ace(args) -> int:
    program, core = _load_program(args)
    result = ace_estimate(program, core, sample_every=args.sample_every)
    print(f"{result.cycles} cycles, {result.samples} occupancy samples")
    for name, estimate in sorted(result.estimates.items()):
        print(f"  {name:10s} ACE-AVF upper bound {estimate:.4f}")
    return 0


def cmd_fields(args) -> int:
    program, core = _load_program(args)
    sim = Simulator(program, core)
    total = 0
    for name in sim.fault_fields():
        bits = sim.bit_count(name)
        total += bits
        print(f"  {name:10s} {bits:>10d} bits")
    print(f"  {'total':10s} {total:>10d} bits")
    return 0


def _add_resilience(parser: argparse.ArgumentParser) -> None:
    """Campaign-supervisor knobs shared by ``inject`` and ``grid``."""
    parser.add_argument("--max-retries", type=int,
                        default=DEFAULT_MAX_RETRIES, metavar="K",
                        help="re-run a crashed or hung shard up to K "
                             "times before bisecting it down to the "
                             "poison trial (default: %(default)s)")
    parser.add_argument("--shard-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="watchdog deadline per shard; default "
                             "derives one from the golden run's cycle "
                             "count, 0 disables the watchdog")
    parser.add_argument("--fail-fast", action="store_true",
                        help="abort on the first worker crash or hung "
                             "shard instead of retrying/quarantining")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("compile", help="compile and show stats")
    _add_common(p)
    p.add_argument("--listing", action="store_true")
    p.set_defaults(func=cmd_compile)

    p = sub.add_parser("verify",
                       help="compile with per-pass IR verification")
    _add_common(p)
    p.add_argument("--json", action="store_true",
                   help="emit one JSON document on stdout")
    p.set_defaults(func=cmd_verify)

    p = sub.add_parser("lint",
                       help="static vulnerability analysis (no simulation)")
    _add_common(p)
    p.add_argument("--top", type=int, default=10,
                   help="instruction slots to show in the report")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON document on stdout")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "slice", help="bit-level fault-propagation verdict slice")
    _add_common(p)
    p.add_argument("--pc", default=None, metavar="ADDR",
                   help="instruction address, e.g. 0x1040 (omit for the "
                        "whole-program census)")
    p.add_argument("--reg", default=None, metavar="REG",
                   help="register to slice (r5, a0, sp, ...); default "
                        "all registers")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON document on stdout")
    p.set_defaults(func=cmd_slice)

    p = sub.add_parser("run", help="fault-free simulation")
    _add_common(p)
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.add_argument("--json", action="store_true",
                   help="emit one JSON document on stdout")
    p.add_argument("--metrics", action="store_true",
                   help="sample occupancy/stall/cache metrics during "
                        "the run and report them")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="write pipeline-activity Chrome trace (Perfetto)")
    p.set_defaults(func=cmd_run)

    p = sub.add_parser("inject", help="fault-injection campaign")
    _add_common(p)
    p.add_argument("--field", default="rob.flags")
    p.add_argument("-n", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mode", default="occupancy",
                   choices=["occupancy", "uniform"])
    p.add_argument("--burst", type=int, default=1,
                   help="adjacent bits per fault (multi-bit upsets)")
    p.add_argument("--no-snapshots", action="store_true")
    p.add_argument("--workers", "-j", type=int, default=None,
                   help="shard trials across this many worker processes "
                        "(default: REPRO_WORKERS)")
    p.add_argument("--resume", action="store_true",
                   help="checkpoint finished shards under REPRO_CACHE_DIR "
                        "and resume an interrupted campaign")
    p.add_argument("--no-early-exit", action="store_true",
                   help="disable static pruning and golden-digest early "
                        "trial termination (always run trials in full)")
    _add_resilience(p)
    p.add_argument("--horizon", type=int, default=None,
                   help="cap on post-injection cycles compared against "
                        "the golden digest trace before giving up on "
                        "convergence (default: full trace)")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON document on stdout")
    p.add_argument("--trace-out", metavar="PATH", default=None,
                   help="trace fault propagation and write a Chrome "
                        "trace (shard timeline + provenance trails)")
    p.add_argument("--events-out", metavar="PATH", default=None,
                   help="write the campaign event stream (meta, shard "
                        "spans, per-trial records) as JSON lines")
    p.set_defaults(func=cmd_inject)

    p = sub.add_parser(
        "trace", help="traced campaign -> Chrome trace for Perfetto")
    _add_common(p)
    p.add_argument("--field", default="rob.flags")
    p.add_argument("-n", type=int, default=8,
                   help="traced injection trials")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--mode", default="occupancy",
                   choices=["occupancy", "uniform"])
    p.add_argument("--workers", "-j", type=int, default=None)
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.add_argument("--interval", type=int, default=16,
                   help="pipeline sampling period in cycles")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="trace file (default <program>-<field>"
                        ".trace.json)")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON document on stdout")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "stats", help="observed fault-free run -> metrics report")
    _add_common(p)
    p.add_argument("--max-cycles", type=int, default=50_000_000)
    p.add_argument("--interval", type=int, default=16,
                   help="sampling period in cycles")
    p.add_argument("--json", action="store_true",
                   help="emit one JSON document on stdout")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("ace", help="ACE-style analytic AVF estimate")
    _add_common(p)
    p.add_argument("--sample-every", type=int, default=25)
    p.set_defaults(func=cmd_ace)

    p = sub.add_parser("fields", help="list injectable fields")
    _add_common(p)
    p.set_defaults(func=cmd_fields)

    p = sub.add_parser("grid", help="populate the campaign grid")
    p.add_argument("--workers", "-j", type=int, default=None,
                   help="worker processes (default: REPRO_WORKERS)")
    p.add_argument("--no-resume", action="store_true",
                   help="ignore shard checkpoints of interrupted runs")
    _add_resilience(p)
    p.set_defaults(func=_run_grid)

    p = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    p.add_argument("output", nargs="?", default="EXPERIMENTS.md")
    p.set_defaults(func=_run_report)

    return parser


def _run_grid(args) -> int:
    from .experiments.run_grid import main

    argv: list[str] = []
    if args.workers is not None:
        argv += ["--workers", str(args.workers)]
    if args.no_resume:
        argv.append("--no-resume")
    argv += ["--max-retries", str(args.max_retries)]
    if args.shard_timeout is not None:
        argv += ["--shard-timeout", str(args.shard_timeout)]
    if args.fail_fast:
        argv.append("--fail-fast")
    return main(argv)


def _run_report(args) -> int:
    from .experiments.report import generate
    from .experiments import CampaignGrid, GridSpec

    grid = CampaignGrid(GridSpec.from_env())
    Path(args.output).write_text(generate(grid))
    print(f"wrote {args.output}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except KeyboardInterrupt:
        # Backstop for commands without their own ^C epilogue: exit
        # with the conventional SIGINT status instead of a traceback.
        _LOG.warning("interrupted")
        return EXIT_SIGINT


if __name__ == "__main__":
    sys.exit(main())
