#!/usr/bin/env python3
"""Per-optimization ablation (the paper's stated future work).

The paper closes by proposing to characterize how *individual*
optimizations (not whole O-levels) move each structure's vulnerability.
This example does exactly that for the dot-product-style gsm kernel:
single-pass pipelines and O2-minus-one-pass pipelines, measuring
execution cycles plus ROB and RF vulnerability for each variant.
"""

from repro.compiler import TARGETS, compile_custom
from repro.gefin import run_campaign, run_golden
from repro.microarch import CONFIGS
from repro.workloads import get_workload

CORE = "cortex-a15"
N = 12
O2_PASSES = ["constfold", "copyprop", "cse", "licm", "strength",
             "addrfold", "dce", "simplify_cfg", "schedule"]


def measure(tag: str, passes: list[str], source: str) -> None:
    config = CONFIGS[CORE]
    target = TARGETS["armlet32"]
    result = compile_custom(source, passes, target, name=f"abl-{tag}")
    golden = run_golden(result.program, config)
    rob = run_campaign(result.program, config, "rob.flags", n=N, seed=2,
                       golden=golden)
    prf = run_campaign(result.program, config, "prf", n=N, seed=2,
                       golden=golden)
    print(f"{tag:22s} text={result.text_size:4d} "
          f"cycles={golden.cycles:6d} "
          f"AVF(rob.flags)={rob.avf:.3f} AVF(prf)={prf.avf:.3f}")


def main() -> None:
    source = get_workload("gsm").source("micro")
    print(f"gsm (micro) on {CORE}; n={N} faults per structure\n")
    measure("no passes (O0-like)", [], source)
    for name in ("constfold", "cse", "licm", "strength", "schedule"):
        measure(f"only {name}", [name], source)
    measure("full O2 set", O2_PASSES, source)
    for dropped in ("licm", "strength", "schedule"):
        passes = [p for p in O2_PASSES if p != dropped]
        measure(f"O2 minus {dropped}", passes, source)


if __name__ == "__main__":
    main()
