#!/usr/bin/env python3
"""Compiler explorer: see what each optimization level does to a kernel.

Compiles a small dot-product kernel at O0-O3, prints the post-
optimization IR and generated armlet assembly side by side with static
and dynamic statistics -- the compiler-side mechanics behind the paper's
vulnerability differences (register residency up, memory traffic down,
code size up at O3).
"""

from repro.compiler import ARMLET32, compile_module
from repro.kernel import MainMemory, load, run_functional

SOURCE = """
int a[64];
int b[64];

int dot(int* x, int* y, int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += x[i] * y[i]; }
    return s;
}

int main() {
    for (int i = 0; i < 64; i++) {
        a[i] = i * 3 + 1;
        b[i] = 64 - i;
    }
    putint(dot(a, b, 64));
    return 0;
}
"""


def main() -> None:
    print("source kernel: 64-element dot product\n")
    rows = []
    for level in ("O0", "O1", "O2", "O3"):
        result = compile_module(SOURCE, level, ARMLET32)
        memory = MainMemory(4 * 1024 * 1024)
        run = run_functional(load(result.program, memory), memory)
        mem_ops = run.mix["mem"]
        rows.append((level, result.text_size, run.instructions, mem_ops,
                     run.mix["branch"], run.mix["mul"]))
        if level in ("O0", "O2"):
            print(f"--- {level}: IR of dot() "
                  f"{'(unoptimized)' if level == 'O0' else ''} ---")
            print(result.module.functions.get("dot",
                  next(iter(result.module.functions.values()))).dump())
            print()

    print("level  text  dyn-instr  mem-ops  branches  muls")
    for level, text, instr, mem, branches, muls in rows:
        print(f"{level:5s}  {text:4d}  {instr:9d}  {mem:7d}  "
              f"{branches:8d}  {muls:4d}")
    print("\nNote the O0 memory traffic (stack-homed locals) vs O1+, and "
          "the O3 text growth (inlining + unrolling) -- these drive the "
          "L1D/RF/ROB vulnerability contrasts in the study.")


if __name__ == "__main__":
    main()
