#!/usr/bin/env python3
"""Quickstart: compile a benchmark, run it on both cores, inject faults.

This walks the full public API in under a minute:

1. compile MiBench-analog `sha` at two optimization levels,
2. run golden (fault-free) simulations on the Cortex-A15 model,
3. run a small statistical fault-injection campaign against the
   reorder buffer and the L1 data cache,
4. print AVFs with their statistical error margins.
"""

from repro import build_simulator, compile_workload, golden_run, \
    run_campaign


def main() -> None:
    print("== compile sha at O0 and O2 for the Cortex-A15 model ==")
    programs = {
        level: compile_workload("sha", opt_level=level, core="cortex-a15")
        for level in ("O0", "O2")
    }
    for level, program in programs.items():
        print(f"  {level}: {len(program.text)} instructions of text, "
              f"{len(program.data)} bytes of data")

    print("\n== golden runs ==")
    goldens = {}
    for level, program in programs.items():
        goldens[level] = golden_run(program, core="cortex-a15")
        stats = goldens[level].stats
        print(f"  {level}: {goldens[level].cycles} cycles, "
              f"IPC {stats['ipc']:.2f}, "
              f"output {goldens[level].output_data!r}")
    speedup = goldens["O0"].cycles / goldens["O2"].cycles
    print(f"  O2 speedup over O0: {speedup:.2f}x")

    print("\n== fault injection: 40 faults per structure field ==")
    for level, program in programs.items():
        for field in ("rob.flags", "l1d.data"):
            result = run_campaign(program, field, n=40,
                                  core="cortex-a15", seed=1,
                                  golden=goldens[level])
            classes = {cls: round(avf, 3)
                       for cls, avf in result.avf_by_class.items() if avf}
            print(f"  {level} {field:9s} AVF={result.avf:.3f} "
                  f"(+/-{result.margin():.3f} at 99%)  {classes}")

    print("\n== direct simulator access ==")
    sim = build_simulator(programs["O2"], core="cortex-a15")
    sim.run_until(2000)
    print(f"  at cycle {sim.cycle}: ROB holds "
          f"{sim.core.rob.occupancy} uops, "
          f"IQ holds {sim.core.iq.occupancy}")
    print(f"  injectable fields: {', '.join(sim.fault_fields())}")


if __name__ == "__main__":
    main()
