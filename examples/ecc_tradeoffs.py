#!/usr/bin/env python3
"""ECC protection trade-offs (paper Section VII / Fig. 12).

For one benchmark, computes the whole-CPU FIT rate of each optimization
level under three protection configurations -- no ECC, ECC on L1D+L2, and
ECC on L2 only -- plus the performance-aware Failures-per-Execution
metric, reproducing the paper's punchline: with caches protected, O2 is
the consistently robust choice and the optimization speedup pays back
the residual vulnerability.
"""

from repro import compile_workload, golden_run, run_campaign
from repro.avf import (
    ECC_SCHEMES,
    cpu_fit,
    failures_per_execution,
)
from repro.microarch import ALL_FIELDS, CONFIGS

CORE = "cortex-a15"
BENCH = "qsort"
N = 16


def main() -> None:
    config = CONFIGS[CORE]
    print(f"{BENCH} on {CORE}: FIT under ECC configurations "
          f"(n={N}/field)\n")
    fits = {}
    fpes = {}
    for level in ("O0", "O1", "O2", "O3"):
        program = compile_workload(BENCH, opt_level=level, core=CORE)
        golden = golden_run(program, core=CORE, snapshot_every=2000)
        avfs = {}
        for field in ALL_FIELDS:
            avfs[field] = run_campaign(program, field, n=N, core=CORE,
                                       seed=3, golden=golden).avf
        fits[level] = {
            scheme.name: cpu_fit(config, avfs, scheme)
            for scheme in ECC_SCHEMES
        }
        fpes[level] = failures_per_execution(
            fits[level]["no-ecc"], golden.cycles)

    schemes = [s.name for s in ECC_SCHEMES]
    print(f"{'level':6s} " + " ".join(f"{s:>12s}" for s in schemes)
          + f" {'FPE/O0':>8s}")
    for level, row in fits.items():
        rel_fpe = fpes[level] / fpes["O0"]
        print(f"{level:6s} "
              + " ".join(f"{row[s]:12.2f}" for s in schemes)
              + f" {rel_fpe:8.3f}")
    print("\nFIT = failures per 1e9 device-hours (eq. 2); FPE/O0 is the "
          "performance-aware comparison (eq. 3) -- values below 1.0 mean "
          "the speedup outweighs the added vulnerability.")


if __name__ == "__main__":
    main()
